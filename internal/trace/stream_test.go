package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func writeStreamRows(t *testing.T, nthreads int, rows [][][]Event, global []GlobalRef) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, nthreads)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := sw.WriteEpoch(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(global); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readStreamRows(t *testing.T, data []byte) (int, [][][]Event, []GlobalRef) {
	t.Helper()
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rows [][][]Event
	for {
		row, err := sr.NextEpoch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	return sr.NumThreads(), rows, sr.Global()
}

func TestStreamRoundTrip(t *testing.T) {
	rows := [][][]Event{
		{
			{{Kind: Alloc, Addr: 0x100, Size: 16}, {Kind: Write, Addr: 0x100, Size: 8}},
			{{Kind: TaintSrc, Addr: 0x200, Size: 4}},
		},
		{
			{}, // empty block: the grid stays rectangular
			{{Kind: AssignUn, Addr: 0x10, Src1: 0x200}, {Kind: Jump, Addr: 0x10}},
		},
		{
			{{Kind: Free, Addr: 0x100, Size: 16}},
			{},
		},
	}
	global := []GlobalRef{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {1, 2}, {0, 2}}
	data := writeStreamRows(t, 2, rows, global)

	nt, got, gotGlobal := readStreamRows(t, data)
	if nt != 2 {
		t.Fatalf("NumThreads = %d, want 2", nt)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("rows round trip:\n got %v\nwant %v", got, rows)
	}
	if !reflect.DeepEqual(gotGlobal, global) {
		t.Fatalf("global round trip: got %v, want %v", gotGlobal, global)
	}
}

func TestStreamEmpty(t *testing.T) {
	data := writeStreamRows(t, 3, nil, nil)
	nt, rows, global := readStreamRows(t, data)
	if nt != 3 || rows != nil || global != nil {
		t.Fatalf("empty stream decoded to nt=%d rows=%v global=%v", nt, rows, global)
	}
}

func TestStreamTruncated(t *testing.T) {
	rows := [][][]Event{{
		{{Kind: Write, Addr: 0x10, Size: 4}},
		{{Kind: Read, Addr: 0x10, Size: 4}},
	}}
	data := writeStreamRows(t, 2, rows, nil)
	for cut := 0; cut < len(data); cut++ {
		sr, err := NewStreamReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // truncated header: fine, as long as it errors
		}
		sawEOF := false
		for {
			_, err := sr.NextEpoch()
			if err == nil {
				continue
			}
			if err == io.EOF {
				sawEOF = true
			}
			break
		}
		if sawEOF {
			t.Fatalf("cut at %d/%d: truncated stream reported clean io.EOF", cut, len(data))
		}
	}
}

func TestStreamRejectsHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEpoch([][]Event{{{Kind: Heartbeat}}}); err == nil {
		t.Fatal("WriteEpoch accepted a heartbeat marker")
	}

	// A hand-forged frame containing a heartbeat must be rejected on read.
	forged := writeStreamRows(t, 1, [][][]Event{{{{Kind: Nop}}}}, nil)
	hb := bytes.Replace(forged, []byte{frameEpoch, 1, byte(Nop)}, []byte{frameEpoch, 1, byte(Heartbeat)}, 1)
	sr, err := NewStreamReader(bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.NextEpoch(); err == nil {
		t.Fatal("NextEpoch accepted a heartbeat marker")
	}
}

func TestStreamRowShapeChecked(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEpoch([][]Event{{}}); err == nil {
		t.Fatal("WriteEpoch accepted a row with the wrong thread count")
	}
	if err := sw.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEpoch([][]Event{{}, {}}); err == nil {
		t.Fatal("WriteEpoch accepted a row after Close")
	}
}

// TestStreamTruncationSentinel pins the contract the remote client's retry
// logic depends on: a stream cut at ANY byte offset — inside the header,
// mid-frame, or mid-event — must surface an error matching
// errors.Is(err, io.ErrUnexpectedEOF), and must never match a clean io.EOF.
func TestStreamTruncationSentinel(t *testing.T) {
	rows := [][][]Event{
		{
			{{Kind: Write, Addr: 0x10, Size: 4}, {Kind: Alloc, Addr: 0x900, Size: 64}},
			{{Kind: Read, Addr: 0x10, Size: 4}},
		},
		{
			{},
			{{Kind: TaintSrc, Addr: 0x20, Size: 1}},
		},
	}
	data := writeStreamRows(t, 2, rows, []GlobalRef{{0, 0}, {1, 0}})
	for cut := 0; cut < len(data); cut++ {
		var err error
		sr, herr := NewStreamReader(bytes.NewReader(data[:cut]))
		if herr != nil {
			err = herr
		} else {
			for {
				_, nerr := sr.NextEpoch()
				if nerr != nil {
					err = nerr
					break
				}
			}
		}
		if err == nil {
			t.Fatalf("cut at %d/%d: no error", cut, len(data))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d/%d: error %v does not match io.ErrUnexpectedEOF", cut, len(data), err)
		}
	}
}

func TestEpochRowCodec(t *testing.T) {
	rows := [][][]Event{
		{{{Kind: Alloc, Addr: 0x100, Size: 16}}, {}},
		{{}, {{Kind: AssignBin, Addr: 0x1, Src1: 0x2, Src2: 0x3}, {Kind: Jump, Addr: 0x1}}},
		{{}, {}},
	}
	for _, row := range rows {
		var buf bytes.Buffer
		if err := EncodeEpochRow(&buf, row); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEpochRow(buf.Bytes(), len(row))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("row codec round trip:\n got %v\nwant %v", got, row)
		}
		// Truncation keeps the sentinel; trailing bytes are rejected.
		if len(buf.Bytes()) > 1 {
			if _, err := DecodeEpochRow(buf.Bytes()[:len(buf.Bytes())-1], len(row)); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("truncated row: got %v, want io.ErrUnexpectedEOF", err)
			}
		}
		if _, err := DecodeEpochRow(append(buf.Bytes(), 0x7), len(row)); err == nil {
			t.Fatal("row with trailing bytes decoded cleanly")
		}
	}
	if _, err := DecodeEpochRow([]byte{1, byte(Heartbeat), 0, 0, 0, 0, 0}, 1); err == nil {
		t.Fatal("row with heartbeat marker decoded cleanly")
	}
}

func TestStreamBadMagic(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("BFLY1\x01"))); err == nil {
		t.Fatal("batch magic accepted as a stream")
	}
	if _, err := NewStreamReader(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("empty input: got %v", err)
	}
}
