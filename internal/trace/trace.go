// Package trace defines the dynamic event model consumed by lifeguards.
//
// Butterfly analysis (ASPLOS 2010) deliberately abstracts the monitoring
// infrastructure to "one event sequence per application thread" (§2). This
// package is that abstraction: an Event is one instruction-grain application
// event (memory access, allocation, taint source, assignment, critical use),
// a Trace is the per-thread sequences plus — when produced by the machine
// simulator — the ground-truth globally visible order used to score false
// positives. Lifeguards never look at the ground truth; only the evaluation
// harness does.
package trace

import (
	"fmt"
)

// ThreadID identifies an application thread (and its lifeguard thread).
type ThreadID int

// Kind enumerates the instruction-grain event classes lifeguards care about.
type Kind uint8

const (
	// Nop is an application instruction with no lifeguard-relevant effect.
	// It still advances instruction counts (and therefore epochs).
	Nop Kind = iota
	// Read is a data read of [Addr, Addr+Size).
	Read
	// Write is a data write of [Addr, Addr+Size).
	Write
	// Alloc marks [Addr, Addr+Size) as allocated (malloc and friends).
	Alloc
	// Free marks [Addr, Addr+Size) as deallocated.
	Free
	// TaintSrc marks [Addr, Addr+Size) as tainted (untrusted input, e.g. a
	// network receive system call).
	TaintSrc
	// Untaint marks Addr as untainted (assignment of a constant).
	Untaint
	// AssignUn is x := unop(a): Addr = destination x, Src1 = a.
	AssignUn
	// AssignBin is x := binop(a, b): Addr = destination, Src1 = a, Src2 = b.
	AssignBin
	// Jump is a critical use of the value at Addr (indirect jump target,
	// format string pointer, ...). TaintCheck raises an error if tainted.
	Jump
	// Heartbeat is the epoch-boundary marker inserted into the log (§4.1).
	Heartbeat
	// BarrierEv marks an application-level barrier (used by the machine and
	// the performance model; transparent to lifeguards).
	BarrierEv
	// Lock marks acquisition of the lock identified by Addr (used by
	// lockset-based race detection).
	Lock
	// Unlock marks release of the lock identified by Addr.
	Unlock

	numKinds
)

var kindNames = [numKinds]string{
	"nop", "read", "write", "alloc", "free", "taint", "untaint",
	"unop", "binop", "jump", "heartbeat", "barrier", "lock", "unlock",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMemAccess reports whether the event reads or writes application memory
// (the denominator of the paper's false-positive rate: "% of memory
// accesses").
func (k Kind) IsMemAccess() bool { return k == Read || k == Write }

// Event is one instruction-grain application event.
type Event struct {
	Kind Kind
	// Addr is the primary address: accessed location, allocation base,
	// assignment destination, or critical-use source.
	Addr uint64
	// Size is the byte length for Read/Write/Alloc/Free/TaintSrc.
	Size uint64
	// Src1, Src2 are assignment source locations (AssignUn uses Src1 only).
	Src1, Src2 uint64
	// Cycle is the simulated issue cycle (0 for hand-built traces).
	Cycle uint64
}

// Lo and Hi return the half-open byte range the event touches.
func (e Event) Lo() uint64 { return e.Addr }

// Hi returns the (exclusive) end of the byte range the event touches.
func (e Event) Hi() uint64 {
	if e.Size == 0 {
		return e.Addr + 1
	}
	return e.Addr + e.Size
}

func (e Event) String() string {
	switch e.Kind {
	case AssignUn:
		return fmt.Sprintf("%v %#x := op(%#x)", e.Kind, e.Addr, e.Src1)
	case AssignBin:
		return fmt.Sprintf("%v %#x := op(%#x, %#x)", e.Kind, e.Addr, e.Src1, e.Src2)
	case Nop, Heartbeat, BarrierEv:
		return e.Kind.String()
	default:
		return fmt.Sprintf("%v [%#x,%#x)", e.Kind, e.Lo(), e.Hi())
	}
}

// GlobalRef locates an event inside a Trace by thread and position.
type GlobalRef struct {
	Thread ThreadID
	Index  int
}

// Trace holds per-thread event sequences, and optionally the ground-truth
// globally visible order produced by the machine simulator.
type Trace struct {
	Threads [][]Event
	// Global, if non-nil, is the order in which the events became globally
	// visible during the simulated execution. It indexes Threads. Lifeguards
	// must not read it; the evaluation harness uses it as the oracle.
	Global []GlobalRef
}

// NumThreads returns the number of application threads in the trace.
func (tr *Trace) NumThreads() int { return len(tr.Threads) }

// NumEvents returns the total number of events across all threads.
func (tr *Trace) NumEvents() int {
	n := 0
	for _, th := range tr.Threads {
		n += len(th)
	}
	return n
}

// MemAccesses counts Read/Write events across all threads.
func (tr *Trace) MemAccesses() int {
	n := 0
	for _, th := range tr.Threads {
		for _, e := range th {
			if e.Kind.IsMemAccess() {
				n++
			}
		}
	}
	return n
}

// At returns the event a GlobalRef points to.
func (tr *Trace) At(g GlobalRef) Event { return tr.Threads[g.Thread][g.Index] }

// Serialize returns the events in ground-truth global order. It panics if the
// trace has no ground truth.
func (tr *Trace) Serialize() []Event {
	if tr.Global == nil {
		panic("trace: Serialize on a trace without ground truth")
	}
	out := make([]Event, len(tr.Global))
	for i, g := range tr.Global {
		out[i] = tr.At(g)
	}
	return out
}

// Validate checks internal consistency: ground-truth refs must be in range,
// respect per-thread program order, and cover every non-heartbeat event
// exactly once (heartbeats are log markers, not executed instructions, so a
// ground truth may include or omit them; we require it to omit none of the
// others). It returns nil for traces without ground truth.
func (tr *Trace) Validate() error {
	if tr.Global == nil {
		return nil
	}
	next := make([]int, len(tr.Threads))
	covered := 0
	for i, g := range tr.Global {
		if int(g.Thread) < 0 || int(g.Thread) >= len(tr.Threads) {
			return fmt.Errorf("trace: global[%d] has bad thread %d", i, g.Thread)
		}
		th := tr.Threads[g.Thread]
		if g.Index < 0 || g.Index >= len(th) {
			return fmt.Errorf("trace: global[%d] has bad index %d (thread %d has %d events)", i, g.Index, g.Thread, len(th))
		}
		// Skip heartbeat markers when checking program order coverage.
		for next[g.Thread] < len(th) && th[next[g.Thread]].Kind == Heartbeat {
			next[g.Thread]++
		}
		if g.Index != next[g.Thread] {
			return fmt.Errorf("trace: global[%d] = (t%d,%d) violates program order (expected index %d)", i, g.Thread, g.Index, next[g.Thread])
		}
		next[g.Thread]++
		covered++
	}
	want := 0
	for _, th := range tr.Threads {
		for _, e := range th {
			if e.Kind != Heartbeat {
				want++
			}
		}
	}
	if covered != want {
		return fmt.Errorf("trace: ground truth covers %d events, want %d", covered, want)
	}
	return nil
}
