package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Heartbeat.String() != "heartbeat" {
		t.Fatalf("kind names wrong: %v %v", Read, Heartbeat)
	}
	if Kind(200).String() == "" {
		t.Fatal("out-of-range kind should still render")
	}
}

func TestEventRange(t *testing.T) {
	e := Event{Kind: Write, Addr: 0x100, Size: 4}
	if e.Lo() != 0x100 || e.Hi() != 0x104 {
		t.Fatalf("range = [%#x,%#x)", e.Lo(), e.Hi())
	}
	// Zero size is treated as a single byte so checks never trivially pass.
	z := Event{Kind: Read, Addr: 0x10}
	if z.Hi() != 0x11 {
		t.Fatalf("zero-size Hi = %#x", z.Hi())
	}
}

func TestBuilderAndCounts(t *testing.T) {
	tr := NewBuilder(2).
		T(0).Alloc(0x100, 16).Write(0x100, 4).Heartbeat().Read(0x104, 4).
		T(1).Nop(2).Read(0x100, 4).
		Build()
	if tr.NumThreads() != 2 {
		t.Fatalf("threads = %d", tr.NumThreads())
	}
	if tr.NumEvents() != 7 {
		t.Fatalf("events = %d", tr.NumEvents())
	}
	if tr.MemAccesses() != 3 {
		t.Fatalf("mem accesses = %d", tr.MemAccesses())
	}
}

func TestValidateGroundTruth(t *testing.T) {
	tr := NewBuilder(2).
		T(0).Write(1, 1).Write(2, 1).
		T(1).Write(3, 1).
		Build()
	tr.Global = []GlobalRef{{0, 0}, {1, 0}, {0, 1}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid ground truth rejected: %v", err)
	}
	if got := tr.Serialize(); len(got) != 3 || got[1].Addr != 3 {
		t.Fatalf("Serialize = %v", got)
	}

	// Out-of-order within a thread must be rejected.
	tr.Global = []GlobalRef{{0, 1}, {0, 0}, {1, 0}}
	if err := tr.Validate(); err == nil {
		t.Fatal("program-order violation accepted")
	}
	// Missing coverage must be rejected.
	tr.Global = []GlobalRef{{0, 0}, {0, 1}}
	if err := tr.Validate(); err == nil {
		t.Fatal("incomplete ground truth accepted")
	}
	// Bad index must be rejected.
	tr.Global = []GlobalRef{{0, 0}, {0, 1}, {1, 5}}
	if err := tr.Validate(); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestValidateSkipsHeartbeats(t *testing.T) {
	tr := NewBuilder(1).T(0).Write(1, 1).Heartbeat().Write(2, 1).Build()
	tr.Global = []GlobalRef{{0, 0}, {0, 2}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("heartbeat-skipping ground truth rejected: %v", err)
	}
}

// randomTrace builds an arbitrary trace with all event kinds, plus a valid
// ground-truth order from a random interleaving.
func randomTrace(rng *rand.Rand) *Trace {
	nt := 1 + rng.Intn(4)
	b := NewBuilder(nt)
	for t := 0; t < nt; t++ {
		b.T(ThreadID(t))
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(1 << 12))
			switch rng.Intn(9) {
			case 0:
				b.Read(addr, uint64(1+rng.Intn(8)))
			case 1:
				b.Write(addr, uint64(1+rng.Intn(8)))
			case 2:
				b.Alloc(addr, uint64(1+rng.Intn(64)))
			case 3:
				b.Free(addr, uint64(1+rng.Intn(64)))
			case 4:
				b.Taint(addr, uint64(1+rng.Intn(4)))
			case 5:
				b.Untaint(addr)
			case 6:
				b.Unop(addr, uint64(rng.Intn(1<<12)))
			case 7:
				b.Binop(addr, uint64(rng.Intn(1<<12)), uint64(rng.Intn(1<<12)))
			case 8:
				b.Jump(addr)
			}
			if rng.Intn(7) == 0 {
				b.Heartbeat()
			}
		}
	}
	tr := b.Build()
	// Random valid interleaving as ground truth.
	next := make([]int, nt)
	for {
		live := 0
		for t := 0; t < nt; t++ {
			for next[t] < len(tr.Threads[t]) && tr.Threads[t][next[t]].Kind == Heartbeat {
				next[t]++
			}
			if next[t] < len(tr.Threads[t]) {
				live++
			}
		}
		if live == 0 {
			break
		}
		t := rng.Intn(nt)
		for next[t] >= len(tr.Threads[t]) {
			t = (t + 1) % nt
		}
		tr.Global = append(tr.Global, GlobalRef{ThreadID(t), next[t]})
		next[t]++
	}
	return tr
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("binary round trip mismatch")
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		tr := randomTrace(rng)
		// The text format does not carry cycles; zero them for comparison.
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		got, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v\ninput:\n%s", err, buf.String())
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("text round trip mismatch")
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("BFLY1"))); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"write 0x10 4\n",             // event before thread header
		"thread 0\nfrobnicate 1 2\n", // unknown kind
		"thread 0\nwrite 0x10\n",     // missing size
		"thread 0\nunop 0x10\n",      // missing src
	} {
		if _, err := ReadText(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func tracesEqual(a, b *Trace) bool {
	if len(a.Threads) != len(b.Threads) || len(a.Global) != len(b.Global) {
		return false
	}
	for t := range a.Threads {
		if len(a.Threads[t]) != len(b.Threads[t]) {
			return false
		}
		for i := range a.Threads[t] {
			if a.Threads[t][i] != b.Threads[t][i] {
				return false
			}
		}
	}
	for i := range a.Global {
		if a.Global[i] != b.Global[i] {
			return false
		}
	}
	return true
}

func TestRefPackUnpack(t *testing.T) {
	f := func(l uint16, th uint8, i uint32) bool {
		r := Ref{Epoch: int(l), Thread: ThreadID(th % 64), Index: int(i)}
		return UnpackRef(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Pack must be order-preserving within a thread (used as SSA numbers).
	a := Ref{Epoch: 1, Thread: 2, Index: 3}
	b := Ref{Epoch: 1, Thread: 2, Index: 4}
	if a.Pack() >= b.Pack() {
		t.Error("Pack not monotone in index")
	}
}

func TestStrictlyBefore(t *testing.T) {
	a := Ref{Epoch: 0, Thread: 0, Index: 5}
	b := Ref{Epoch: 2, Thread: 1, Index: 0}
	if !StrictlyBefore(a, b, false) {
		t.Error("two-epoch gap must order under any model")
	}
	c := Ref{Epoch: 1, Thread: 1, Index: 0}
	if StrictlyBefore(a, c, false) {
		t.Error("adjacent epochs are unordered across threads")
	}
	// Same-thread program order only counts under SC.
	d1 := Ref{Epoch: 1, Thread: 0, Index: 0}
	d2 := Ref{Epoch: 1, Thread: 0, Index: 1}
	if StrictlyBefore(d1, d2, false) {
		t.Error("same-thread order should not apply under relaxed model")
	}
	if !StrictlyBefore(d1, d2, true) {
		t.Error("same-thread order should apply under SC")
	}
	e1 := Ref{Epoch: 0, Thread: 0, Index: 9}
	if !StrictlyBefore(e1, d2, true) {
		t.Error("earlier epoch same thread should order under SC")
	}
	if StrictlyBefore(d2, d1, true) {
		t.Error("ordering should be asymmetric")
	}
}

func TestPotentiallyConcurrent(t *testing.T) {
	a := Ref{Epoch: 3, Thread: 0}
	for _, tc := range []struct {
		b    Ref
		want bool
	}{
		{Ref{Epoch: 2, Thread: 1}, true},
		{Ref{Epoch: 3, Thread: 1}, true},
		{Ref{Epoch: 4, Thread: 1}, true},
		{Ref{Epoch: 1, Thread: 1}, false},
		{Ref{Epoch: 5, Thread: 1}, false},
		{Ref{Epoch: 3, Thread: 0}, false}, // same thread never "concurrent"
	} {
		if got := PotentiallyConcurrent(a, tc.b); got != tc.want {
			t.Errorf("PotentiallyConcurrent(%v,%v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}
